// bhsweep regenerates the paper's tables and figures (see DESIGN.md's
// per-experiment index) and prints them as ASCII tables, CSV or JSON.
//
// With -cache-dir, every simulated configuration point persists to a
// content-addressed store (see internal/results): repeated invocations
// perform zero simulations, and an interrupted sweep resumes where it
// died. -jobs bounds how many points simulate concurrently; -resume=false
// ignores (and supersedes) previously cached points.
//
// Usage:
//
//	bhsweep                            # everything, scaled-down defaults
//	bhsweep -figs 2,6,8                # a subset
//	bhsweep -csv -out results/         # CSV files, one per experiment
//	bhsweep -mixes 3 -insts 1e6        # larger sweep
//	bhsweep -cache-dir ~/.bhcache      # persistent, resumable sweep
//	bhsweep -cache-dir c -jobs 4 -json # bounded pool, JSON export
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"breakhammer"
	"breakhammer/internal/exp"
	"breakhammer/internal/results"
)

type experiment struct {
	name string
	run  func(r *exp.Runner) (exp.Table, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bhsweep: ")

	var (
		figs     = flag.String("figs", "all", "comma-separated experiment list: table1,table2,table3,2,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,sec5,sec6 or 'all'")
		mixes    = flag.Int("mixes", 1, "workload mixes per group (paper: 15)")
		insts    = flag.Int64("insts", 0, "instructions per benign core (0 = default)")
		channels = flag.Int("channels", 1, "memory channels for every experiment point (power of two)")
		nrhs     = flag.String("nrhs", "", "comma-separated N_RH sweep (default 4096,1024,256,64)")
		mechs    = flag.String("mechs", "", "comma-separated mechanisms (default: all eight)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of ASCII")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of ASCII")
		outDir   = flag.String("out", "", "write one file per experiment into this directory")
		quick    = flag.Bool("quick", false, "minimal smoke-test sweep")
		cacheDir = flag.String("cache-dir", "", "persist simulation results here; repeated sweeps recompute nothing")
		resume   = flag.Bool("resume", true, "with -cache-dir: serve previously completed points from the cache (false recomputes and supersedes them)")
		jobs     = flag.Int("jobs", 0, "configuration points simulated concurrently (0 = auto: ~GOMAXPROCS/4, since each point also parallelizes across its mixes)")
		progress = flag.Bool("progress", true, "stream per-point progress to stderr")
	)
	flag.Parse()
	if *csvOut && *jsonOut {
		log.Fatal("-csv and -json are mutually exclusive")
	}
	if *mixes < 1 {
		log.Fatalf("-mixes must be at least 1, got %d", *mixes)
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.MixesPerGroup = *mixes
	opts.Base.Channels = *channels
	if *insts > 0 {
		opts.Base.TargetInsts = *insts
	}
	if *nrhs != "" {
		opts.NRHs = opts.NRHs[:0]
		for _, s := range strings.Split(*nrhs, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
				log.Fatalf("bad -nrhs entry %q", s)
			}
			opts.NRHs = append(opts.NRHs, v)
		}
	}
	if *mechs != "" {
		opts.Mechanisms = strings.Split(*mechs, ",")
	}

	store, err := results.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	if !*resume {
		store.Reset()
	}
	runner := exp.NewRunnerWithStore(opts, store)
	runner.SetJobs(*jobs)
	var reusedPoints int
	runner.SetProgress(func(done, total int, p exp.Point, cached bool) {
		if cached {
			reusedPoints++
		}
		if *progress {
			suffix := ""
			if cached {
				suffix = " (cached)"
			}
			log.Printf("point %d/%d: %s%s", done, total, p, suffix)
		}
	})

	all := []experiment{
		{"table1", func(*exp.Runner) (exp.Table, error) { return exp.Table1(opts.Base), nil }},
		{"table2", func(*exp.Runner) (exp.Table, error) { return exp.Table2(opts.Base), nil }},
		{"table3", (*exp.Runner).Table3},
		{"2", (*exp.Runner).Figure2},
		{"5", func(*exp.Runner) (exp.Table, error) { return exp.Figure5(), nil }},
		{"6", (*exp.Runner).Figure6},
		{"7", (*exp.Runner).Figure7},
		{"8", (*exp.Runner).Figure8},
		{"9", (*exp.Runner).Figure9},
		{"10", (*exp.Runner).Figure10},
		{"11", (*exp.Runner).Figure11},
		{"12", (*exp.Runner).Figure12},
		{"13", (*exp.Runner).Figure13},
		{"14", (*exp.Runner).Figure14},
		{"15", (*exp.Runner).Figure15},
		{"16", (*exp.Runner).Figure16},
		{"17", (*exp.Runner).Figure17},
		{"18", (*exp.Runner).Figure18},
		{"19", (*exp.Runner).Figure19},
		{"sec5", (*exp.Runner).Section5},
		{"sec6", func(*exp.Runner) (exp.Table, error) { return exp.Section6(), nil }},
	}

	selected := map[string]bool{}
	if *figs == "all" {
		for _, e := range all {
			selected[e.name] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			selected[strings.TrimSpace(f)] = true
		}
	}

	// Fail on an unwritable output directory before simulating anything.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// Enumerate every point the selected experiments will read —
	// deduplicated across figures — and bring them into the store first,
	// spanning points with the worker pool. Figure rendering below then
	// runs without simulating.
	var names []string
	for _, e := range all {
		if selected[e.name] {
			names = append(names, e.name)
		}
	}
	if err := runner.Prefetch(runner.PointsFor(names)); err != nil {
		log.Fatal(err)
	}
	_ = breakhammer.Mechanisms() // façade linkage sanity

	for _, e := range all {
		if !selected[e.name] {
			continue
		}
		tbl, err := e.run(runner)
		if err != nil {
			log.Fatalf("experiment %s: %v", e.name, err)
		}
		var text, ext string
		switch {
		case *csvOut:
			text, ext = tbl.CSV(), ".csv"
		case *jsonOut:
			text, ext = tbl.JSON(), ".json"
		default:
			text, ext = tbl.String(), ".txt"
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, "experiment_"+e.name+ext)
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		} else {
			fmt.Println(text)
		}
	}

	if *cacheDir != "" {
		st := store.Stats()
		log.Printf("cache %s: %d point(s) simulated this run, %d reused from the cache, %d record(s) written",
			*cacheDir, runner.Executed(), reusedPoints, st.Written)
	}
}
