// bhsim runs a single BreakHammer simulation and prints its metrics.
//
// With -cache-dir the finished result persists to the same
// content-addressed store bhsweep uses, so re-running an identical
// invocation replays it instantly; -json dumps the full result record.
//
// With -trace, the benign cores replay recorded trace files (one core
// per file; see internal/trace for the formats) instead of synthetic
// class models, and -attack adds the paper's synthetic RowHammer
// attacker on an extra core. Trace-driven results are cached under keys
// derived from the traces' content hashes, so renaming a trace file
// never invalidates (or forks) the store.
//
// Usage:
//
//	bhsim -mix HHMA -mech graphene -nrh 1024 -bh
//	bhsim -mix LLLA -mech blockhammer -nrh 128 -insts 400000
//	bhsim -mix HHMA -mech rfm -bh -cache-dir ~/.bhcache -json
//	bhsim -trace spec.trace,gap.trace.gz -attack -mech graphene -bh
//	bhsim -mix HHMA -mech graphene -bh -sample        # interval sampling
//	bhsim -mix HHMA -sample -warmup 4000 -detail 12000 -ff 134000
//
// With -sample the run fast-forwards most cycles functionally and
// measures short detailed windows (SMARTS interval sampling): metrics
// print with 95% confidence bands, and the result is cached under a
// distinct key so sampled records never impersonate exact ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"breakhammer"
	"breakhammer/internal/prof"
	"breakhammer/internal/results"
	"breakhammer/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bhsim: ")

	var (
		mixStr     = flag.String("mix", "HHMA", "workload mix letters (H/M/L/A), one per core (ignored with -trace)")
		traces     = flag.String("trace", "", "comma-separated trace files replayed by the benign cores, one core per file")
		attack     = flag.Bool("attack", false, "with -trace: add the synthetic many-sided RowHammer attacker on an extra core")
		mech       = flag.String("mech", "graphene", "mitigation mechanism (none, para, graphene, hydra, twice, aqua, rega, rfm, prac, blockhammer)")
		nrh        = flag.Int("nrh", 1024, "RowHammer threshold N_RH")
		bh         = flag.Bool("bh", false, "pair the mechanism with BreakHammer")
		channels   = flag.Int("channels", 1, "memory channels (power of two; each gets its own controller, DRAM device and mechanism instance)")
		parallelCh = flag.Bool("parallel-channels", false, "tick the memory channels on a worker pool (bit-identical results; wins only with multiple channels and spare cores)")
		insts      = flag.Int64("insts", 0, "instructions per benign core (0 = FastConfig default)")
		sample     = flag.Bool("sample", false, "SMARTS interval sampling: fast-forward most of the run functionally, measure short detailed windows, report metrics with 95% confidence bands")
		warmup     = flag.Int64("warmup", 0, "with -sample: detailed-but-unmeasured warm-up cycles before each measured window (0 = default)")
		detail     = flag.Int64("detail", 0, "with -sample: measured detailed window length in cycles (0 = default)")
		ff         = flag.Int64("ff", 0, "with -sample: functional fast-forward window length in cycles (0 = default)")
		seed       = flag.Int64("seed", 1, "workload seed")
		paper      = flag.Bool("paper", false, "paper-scale configuration (100M instructions, 64 ms window; very slow)")
		verbose    = flag.Bool("v", false, "print per-thread detail")
		cacheDir   = flag.String("cache-dir", "", "persist the result to this directory; identical reruns replay it")
		jsonOut    = flag.Bool("json", false, "print the full result record as JSON")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	cfg := breakhammer.FastConfig()
	if *paper {
		cfg = breakhammer.DefaultConfig()
	}
	cfg.Mechanism = *mech
	cfg.NRH = *nrh
	cfg.BreakHammer = *bh
	cfg.Channels = *channels
	cfg.ParallelChannels = *parallelCh
	cfg.Seed = *seed
	if *insts > 0 {
		cfg.TargetInsts = *insts
	}
	cfg.Sampling = breakhammer.SamplingParams{
		Enabled:      *sample,
		WarmupCycles: *warmup,
		DetailCycles: *detail,
		FFCycles:     *ff,
	}
	if err := cfg.Sampling.Validate(); err != nil {
		log.Fatal(err)
	}

	var mix breakhammer.Mix
	if *traces != "" {
		mix = traceMix(*traces, *attack, *seed)
		// Pin the trace content hashes now: the store key below and the
		// simulation must describe the same bytes, and NewSource verifies
		// the pinned hash at run time.
		resolved, err := breakhammer.ResolveTraceHashes([]breakhammer.Mix{mix})
		if err != nil {
			log.Fatal(err)
		}
		mix = resolved[0]
	} else {
		if *attack {
			log.Fatal("-attack requires -trace (synthetic mixes spell their attacker with an A letter)")
		}
		var err error
		mix, err = breakhammer.ParseMix(*mixStr, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}

	store, err := results.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	key, err := results.Key(cfg, []breakhammer.Mix{mix})
	if err != nil {
		log.Fatal(err)
	}
	var res breakhammer.MixResult
	if cached, ok := store.Get(key); ok && len(cached) == 1 {
		res = cached[0]
		log.Printf("served from cache %s", *cacheDir)
	} else {
		start := time.Now()
		res, err = breakhammer.Run(cfg, mix)
		if err != nil {
			log.Fatal(err)
		}
		if *cacheDir != "" {
			if err := store.Put(key, []breakhammer.MixResult{res}); err != nil {
				log.Fatal(err)
			}
			// Feed the sweep ETA estimator: bhsweep and bhserve project
			// remaining wall-clock from these per-point timings.
			if err := store.RecordElapsed(key, time.Since(start)); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("mix=%s mech=%s nrh=%d breakhammer=%v channels=%d\n", mix.Name, *mech, *nrh, *bh, *channels)
	if *channels > 1 {
		for ch, st := range res.MCChannels {
			fmt.Printf("  channel %d: ACTs=%d VRR=%d RFM=%d REF=%d\n",
				ch, st.TotalACTs, st.VRRs, st.RFMs, st.Refreshes)
		}
	}
	fmt.Printf("cycles=%d simulated=%.3f ms\n", res.Cycles, res.Seconds*1e3)
	if s := res.Sampling; s != nil {
		fmt.Printf("SAMPLED: %d measured windows, %d detailed + %d fast-forwarded cycles — metrics are estimates\n",
			s.Windows, s.DetailedCycles, s.FFCycles)
	}
	fmt.Printf("weighted speedup (benign) = %.4f%s\n", res.WS, bandSuffix(res.WSBand))
	fmt.Printf("unfairness (max benign slowdown) = %.4f%s\n", res.Unfairness, bandSuffix(res.UnfairnessBand))
	fmt.Printf("preventive actions = %d\n", res.Actions)
	fmt.Printf("DRAM energy = %.3f uJ\n", res.EnergyNJ/1e3)
	fmt.Printf("VRR=%d RFM=%d MIG=%d AUX=%d REF=%d\n",
		res.MC.VRRs, res.MC.RFMs, res.MC.Migrations, res.MC.AuxAccesses, res.MC.Refreshes)
	if res.BH != nil {
		fmt.Printf("BreakHammer: actions observed=%d window rotations=%d\n",
			res.BH.ActionsObserved, res.BH.WindowRotations)
		for tid, n := range res.BH.SuspectEvents {
			if n > 0 {
				fmt.Printf("  thread %d: %d suspect events, %d windows throttled\n",
					tid, n, res.BH.SuspectWindows[tid])
			}
		}
	}
	if *verbose {
		fmt.Println("\nper-thread:")
		for tid := range res.IPC {
			role := "benign"
			if !res.Benign[tid] {
				role = "ATTACKER"
			}
			ci := ""
			if s := res.Sampling; s != nil && tid < len(s.IPC) {
				ci = fmt.Sprintf(" CI[%.3f,%.3f]", s.IPC[tid].Lo, s.IPC[tid].Hi)
			}
			fmt.Printf("  t%d %-8s IPC=%.3f%s insts=%d RBMPKI=%.2f P50=%.0fns P99=%.0fns\n",
				tid, role, res.IPC[tid], ci, res.Insts[tid], res.RBMPKI[tid],
				res.Latency[tid].Percentile(50), res.Latency[tid].Percentile(99))
		}
	}
	if !res.BenignFinished {
		fmt.Fprintln(os.Stderr, "warning: benign cores hit MaxCycles before finishing")
	}
}

// bandSuffix renders a sampled metric's 95% confidence interval, or
// nothing for exact runs (and for sampled metrics whose band would be
// unbounded, e.g. unfairness when an IPC interval touches zero).
func bandSuffix(b *breakhammer.SamplingEstimate) string {
	if b == nil {
		return ""
	}
	return fmt.Sprintf("  (95%% CI [%.4f, %.4f])", b.Lo, b.Hi)
}

// traceMix builds the trace-driven mix: one benign core per listed file,
// plus the synthetic attacker when requested. Mix and spec names are
// position-based (never path-based) so the store key survives file
// renames; each trace's scale is logged from its sidecar manifest
// without re-scanning the file.
func traceMix(list string, attack bool, seed int64) breakhammer.Mix {
	var files []string
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			log.Fatalf("empty trace path in -trace %q", list)
		}
		files = append(files, f)
	}
	lines, err := trace.ReportManifests(files)
	if err != nil {
		log.Fatal(err)
	}
	var specs []breakhammer.Spec
	for i, f := range files {
		log.Print(lines[i])
		specs = append(specs, breakhammer.TraceSpec(f, i))
	}
	name := "TRACE"
	if attack {
		name = "TRACEA"
		specs = append(specs, breakhammer.AttackerSpec(0, seed))
	}
	return breakhammer.Mix{Name: name, Specs: specs}
}
