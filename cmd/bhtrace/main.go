// bhtrace generates and inspects workload traces: it prints trace
// records and a DRAM-level characterisation (bank/row spread, expected
// MPKI) for any synthetic workload class, synthesizes trace files that
// bhsim -trace / bhsweep -traces replay (-gen, giving tests and CI
// self-contained trace inputs with no external SPEC/GAP downloads), and
// characterises recorded trace files — records, read/write split,
// footprint, MPKI — from their registry manifests (-summary with file
// arguments; the sidecar *.manifest.json is reused when fresh and
// derived in one streaming pass otherwise).
//
// Usage:
//
//	bhtrace -class H -n 20                 # dump 20 records
//	bhtrace -class A -summary              # attacker characterisation
//	bhtrace -class A -summary -json        # the same, machine-readable
//	bhtrace -class H -n 50000 -gen h.trace # synthesize a replayable trace
//	bhtrace -class M -n 50000 -gen m.trace.gz  # gzip-compressed
//	bhtrace -summary spec.trace gap.trace.gz   # characterise recorded files
//	bhtrace -summary -json spec.trace          # the same, machine-readable
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"breakhammer/internal/dram"
	"breakhammer/internal/memctrl"
	"breakhammer/internal/trace"
	"breakhammer/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bhtrace: ")

	var (
		class     = flag.String("class", "H", "workload class letter: H, M, L or A")
		n         = flag.Int("n", 20, "records to dump")
		seed      = flag.Int64("seed", 1, "trace seed")
		thread    = flag.Int("thread", 0, "hardware thread (selects the address-space slice)")
		channels  = flag.Int("channels", 1, "memory channels for the address decode (power of two)")
		summary   = flag.Bool("summary", false, "print a characterisation summary instead of records; with trace-file arguments, characterise those files from their registry manifests")
		samples   = flag.Int("samples", 100000, "accesses to sample for -summary")
		intervals = flag.Int("intervals", 10, "equal-instruction windows in the -summary phase profile (how MPKI and row pressure drift over the stream; informs sampling window sizes)")
		jsonOut   = flag.Bool("json", false, "emit JSON (one object per record, or one summary object)")
		genOut    = flag.String("gen", "", "synthesize -n records into this trace file (gzip when the name ends in .gz) and print its manifest")
	)
	flag.Parse()

	if *channels <= 0 || *channels&(*channels-1) != 0 {
		log.Fatalf("-channels must be a positive power of two, got %d", *channels)
	}
	if flag.NArg() > 0 {
		if !*summary {
			log.Fatalf("file arguments need -summary (got %q); -class modes take no files", flag.Args())
		}
		if *genOut != "" {
			log.Fatal("-gen cannot be combined with trace-file arguments")
		}
		summarizeFiles(flag.Args(), *jsonOut, *intervals)
		return
	}
	if *genOut != "" && (*summary || *jsonOut) {
		log.Fatal("-gen writes a trace file; it cannot be combined with -summary or -json")
	}
	if *summary && *samples <= 0 {
		log.Fatalf("-samples must be positive for -summary, got %d", *samples)
	}
	if *summary && *intervals <= 0 {
		log.Fatalf("-intervals must be positive for -summary, got %d", *intervals)
	}
	if len(*class) != 1 {
		log.Fatalf("-class must be a single letter (H, M, L or A), got %q", *class)
	}
	c, err := workload.ParseClass((*class)[0])
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.ClassSpec(c, 0, *seed)
	if *genOut != "" {
		if *n <= 0 {
			log.Fatalf("-gen needs a positive -n, got %d", *n)
		}
		synthesize(*genOut, spec, *thread, *n)
		return
	}
	gen := workload.NewGenerator(spec, *thread)
	mapper := memctrl.NewChannelMOPMapper(dram.Default(), *channels)

	if !*summary {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			for i := 0; i < *n; i++ {
				bubbles, line, write := gen.Next()
				a := mapper.Map(line)
				if err := enc.Encode(traceRecord{
					Bubbles: bubbles, Line: line, Write: write,
					Channel: a.Channel, Bank: a.Bank, Row: a.Row, Col: a.Col,
				}); err != nil {
					log.Fatal(err)
				}
			}
			return
		}
		fmt.Printf("# workload=%s class=%s mpki=%g locality=%g footprint=%d lines\n",
			spec.Name, spec.Class, spec.MPKI, spec.Locality, spec.FootprintLines)
		fmt.Println("# bubbles  line-addr      op  ch  bank  row    col")
		for i := 0; i < *n; i++ {
			bubbles, line, write := gen.Next()
			op := "R"
			if write {
				op = "W"
			}
			a := mapper.Map(line)
			fmt.Printf("%9d  %#012x  %s  %2d  %4d  %5d  %3d\n", bubbles, line, op, a.Channel, a.Bank, a.Row, a.Col)
		}
		return
	}

	var insts, accesses, writes int64
	chans := map[int]int64{}
	banks := map[[2]int]int64{}
	rowACTs := map[[3]int]int64{}
	// instAt[k] is the cumulative instruction count after access k; the
	// phase profile below re-buckets it into equal-instruction windows.
	instAt := make([]int64, 0, *samples)
	writeAt := make([]bool, 0, *samples)
	for i := 0; i < *samples; i++ {
		bubbles, line, write := gen.Next()
		insts += bubbles + 1
		accesses++
		if write {
			writes++
		}
		a := mapper.Map(line)
		chans[a.Channel]++
		banks[[2]int{a.Channel, a.Bank}]++
		rowACTs[[3]int{a.Channel, a.Bank, a.Row}]++
		instAt = append(instAt, insts)
		writeAt = append(writeAt, write)
	}
	phases := phaseProfile(instAt, writeAt, insts, *intervals)
	var hot64, hot512 int
	var maxRow int64
	for _, v := range rowACTs {
		if v >= 64 {
			hot64++
		}
		if v >= 512 {
			hot512++
		}
		if v > maxRow {
			maxRow = v
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traceSummary{
			Workload: spec.Name, Class: spec.Class.String(),
			Accesses: accesses, Instructions: insts,
			MPKI:          float64(accesses) / float64(insts) * 1000,
			WriteFraction: float64(writes) / float64(accesses),
			ChannelsUsed:  len(chans), Channels: *channels,
			BanksTouched: len(banks), DistinctRows: len(rowACTs),
			RowsOver64: hot64, RowsOver512: hot512, MaxRowCount: maxRow,
			PhaseProfile: phases,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("workload        %s (class %s)\n", spec.Name, spec.Class)
	fmt.Printf("accesses        %d over %d instructions (MPKI %.1f)\n",
		accesses, insts, float64(accesses)/float64(insts)*1000)
	fmt.Printf("write fraction  %.3f\n", float64(writes)/float64(accesses))
	fmt.Printf("channels used   %d of %d\n", len(chans), *channels)
	fmt.Printf("banks touched   %d\n", len(banks))
	fmt.Printf("distinct rows   %d\n", len(rowACTs))
	fmt.Printf("rows >=64 acc   %d\n", hot64)
	fmt.Printf("rows >=512 acc  %d\n", hot512)
	fmt.Printf("max row count   %d\n", maxRow)
	fmt.Printf("phase profile   %d windows of ~%d instructions (MPKI per window)\n",
		len(phases), insts/int64(len(phases)))
	for _, ph := range phases {
		fmt.Printf("  window %2d  insts=%-8d accesses=%-7d MPKI=%-7.1f writes=%.3f\n",
			ph.Window, ph.Instructions, ph.Accesses, ph.MPKI, ph.WriteFraction)
	}
}

// phaseProfile re-buckets the sampled stream into equal-instruction
// windows: a per-interval view of how access intensity drifts over the
// stream. A flat profile means short sampling windows already see
// representative behaviour; a drifting one argues for longer detailed
// windows (or shorter fast-forwards) so every phase gets measured. The
// window count is the caller's -intervals.
func phaseProfile(instAt []int64, writeAt []bool, totalInsts int64, n int) []phaseWindow {
	if n > len(instAt) && len(instAt) > 0 {
		n = len(instAt)
	}
	if n <= 0 || totalInsts <= 0 {
		return nil
	}
	span := (totalInsts + int64(n) - 1) / int64(n)
	out := make([]phaseWindow, n)
	for i := range out {
		out[i].Window = i
		out[i].Instructions = span
	}
	out[n-1].Instructions = totalInsts - span*int64(n-1)
	for k, at := range instAt {
		w := int((at - 1) / span)
		if w >= n {
			w = n - 1
		}
		out[w].Accesses++
		if writeAt[k] {
			out[w].writes++
		}
	}
	for i := range out {
		if out[i].Instructions > 0 {
			out[i].MPKI = float64(out[i].Accesses) / float64(out[i].Instructions) * 1000
		}
		if out[i].Accesses > 0 {
			out[i].WriteFraction = float64(out[i].writes) / float64(out[i].Accesses)
		}
	}
	return out
}

// phaseWindow is one equal-instruction window of the -summary phase
// profile.
type phaseWindow struct {
	Window        int     `json:"window"`
	Instructions  int64   `json:"instructions"`
	Accesses      int64   `json:"accesses"`
	MPKI          float64 `json:"mpki"`
	WriteFraction float64 `json:"write_fraction"`

	writes int64
}

// summarizeFiles characterises recorded trace files from their registry
// manifests: a fresh sidecar costs one stat and a small JSON read; a
// cold or stale one costs a single streaming pass (which also repairs
// the sidecar). The phase profile needs the record stream itself, so
// each file is additionally loaded through the shared registry (parsed
// once, shared with any simulation in the same process). This is the
// file-level counterpart of the synthetic -class summary, and it prints
// exactly what simulations will see: the content hash is the identity
// results-store keys embed.
func summarizeFiles(paths []string, jsonOut bool, intervals int) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, path := range paths {
		m, err := trace.ReadManifest(path)
		if err != nil {
			log.Fatal(err)
		}
		t, err := trace.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		var insts int64
		instAt := make([]int64, 0, len(t.Records))
		writeAt := make([]bool, 0, len(t.Records))
		for _, rec := range t.Records {
			insts += rec.Bubbles + 1
			instAt = append(instAt, insts)
			writeAt = append(writeAt, rec.Write)
		}
		phases := phaseProfile(instAt, writeAt, insts, intervals)
		if jsonOut {
			if err := enc.Encode(fileSummary{
				Path: path, Hash: m.Hash, Format: m.Format,
				Records: m.Records, Reads: m.Reads, Writes: m.Writes,
				WriteFraction:  writeFraction(m),
				FootprintLines: m.FootprintLines,
				Instructions:   m.Instructions(), MPKI: m.MPKI(),
				SizeBytes:    m.Size,
				PhaseProfile: phases,
			}); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("trace           %s\n", path)
		fmt.Printf("sha256          %s\n", m.Hash)
		fmt.Printf("format          %s (%d bytes on disk)\n", m.Format, m.Size)
		fmt.Printf("records/loop    %d (%d reads, %d writes; write fraction %.3f)\n",
			m.Records, m.Reads, m.Writes, writeFraction(m))
		fmt.Printf("instructions    %d per replay loop (MPKI %.1f)\n", m.Instructions(), m.MPKI())
		fmt.Printf("footprint       %d distinct lines\n", m.FootprintLines)
		fmt.Printf("phase profile   %d windows of ~%d instructions (MPKI per window)\n",
			len(phases), insts/int64(len(phases)))
		for _, ph := range phases {
			fmt.Printf("  window %2d  insts=%-8d accesses=%-7d MPKI=%-7.1f writes=%.3f\n",
				ph.Window, ph.Instructions, ph.Accesses, ph.MPKI, ph.WriteFraction)
		}
	}
}

// writeFraction returns the share of records that are stores.
func writeFraction(m trace.Manifest) float64 {
	if m.Records == 0 {
		return 0
	}
	return float64(m.Writes) / float64(m.Records)
}

// fileSummary is the JSON form of one recorded trace file's
// characterisation (the manifest plus derived ratios).
type fileSummary struct {
	Path           string  `json:"path"`
	Hash           string  `json:"hash"`
	Format         string  `json:"format"`
	Records        int     `json:"records"`
	Reads          int64   `json:"reads"`
	Writes         int64   `json:"writes"`
	WriteFraction  float64 `json:"write_fraction"`
	FootprintLines int     `json:"footprint_lines"`
	Instructions   int64   `json:"instructions"`
	MPKI           float64 `json:"mpki"`
	SizeBytes      int64   `json:"size_bytes"`

	// PhaseProfile splits one replay loop into equal-instruction
	// windows (-intervals): how MPKI and the write mix drift over the
	// recorded stream, the view that informs sampling window-size
	// choices.
	PhaseProfile []phaseWindow `json:"phase_profile"`
}

// synthesize writes n generator records to path in the format the trace
// decoders read (gzip-compressed when the name says so), then loads the
// result through the trace registry — which verifies it decodes, writes
// the sidecar manifest, and yields the content hash the results store
// will key simulations by.
func synthesize(path string, spec workload.Spec, thread, n int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := workload.WriteTrace(w, spec, thread, n); err != nil {
		log.Fatal(err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	t, err := trace.Load(path)
	if err != nil {
		log.Fatalf("generated trace does not decode: %v", err)
	}
	log.Printf("wrote %s: %s", path, t.Manifest.Summary())
}

// traceRecord is the JSON form of one dumped trace access.
type traceRecord struct {
	Bubbles int64  `json:"bubbles"`
	Line    uint64 `json:"line"`
	Write   bool   `json:"write"`
	Channel int    `json:"channel"`
	Bank    int    `json:"bank"`
	Row     int    `json:"row"`
	Col     int    `json:"col"`
}

// traceSummary is the JSON form of the -summary characterisation.
type traceSummary struct {
	Workload      string  `json:"workload"`
	Class         string  `json:"class"`
	Accesses      int64   `json:"accesses"`
	Instructions  int64   `json:"instructions"`
	MPKI          float64 `json:"mpki"`
	WriteFraction float64 `json:"write_fraction"`
	ChannelsUsed  int     `json:"channels_used"`
	Channels      int     `json:"channels"`
	BanksTouched  int     `json:"banks_touched"`
	DistinctRows  int     `json:"distinct_rows"`
	RowsOver64    int     `json:"rows_over_64"`
	RowsOver512   int     `json:"rows_over_512"`
	MaxRowCount   int64   `json:"max_row_count"`

	// PhaseProfile splits the sampled stream into equal-instruction
	// windows (-intervals): how MPKI and the write mix drift over the
	// stream, the view that informs sampling window-size choices.
	PhaseProfile []phaseWindow `json:"phase_profile"`
}
