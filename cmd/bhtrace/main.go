// bhtrace generates and inspects synthetic workload traces: it prints
// trace records and a DRAM-level characterisation (bank/row spread,
// expected MPKI) for any workload class.
//
// Usage:
//
//	bhtrace -class H -n 20           # dump 20 records
//	bhtrace -class A -summary        # attacker characterisation
package main

import (
	"flag"
	"fmt"
	"log"

	"breakhammer/internal/dram"
	"breakhammer/internal/memctrl"
	"breakhammer/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bhtrace: ")

	var (
		class    = flag.String("class", "H", "workload class letter: H, M, L or A")
		n        = flag.Int("n", 20, "records to dump")
		seed     = flag.Int64("seed", 1, "trace seed")
		thread   = flag.Int("thread", 0, "hardware thread (selects the address-space slice)")
		channels = flag.Int("channels", 1, "memory channels for the address decode (power of two)")
		summary  = flag.Bool("summary", false, "print a characterisation summary instead of records")
		samples  = flag.Int("samples", 100000, "accesses to sample for -summary")
	)
	flag.Parse()

	c, err := workload.ParseClass((*class)[0])
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.ClassSpec(c, 0, *seed)
	gen := workload.NewGenerator(spec, *thread)
	mapper := memctrl.NewChannelMOPMapper(dram.Default(), *channels)

	if !*summary {
		fmt.Printf("# workload=%s class=%s mpki=%g locality=%g footprint=%d lines\n",
			spec.Name, spec.Class, spec.MPKI, spec.Locality, spec.FootprintLines)
		fmt.Println("# bubbles  line-addr      op  ch  bank  row    col")
		for i := 0; i < *n; i++ {
			bubbles, line, write := gen.Next()
			op := "R"
			if write {
				op = "W"
			}
			a := mapper.Map(line)
			fmt.Printf("%9d  %#012x  %s  %2d  %4d  %5d  %3d\n", bubbles, line, op, a.Channel, a.Bank, a.Row, a.Col)
		}
		return
	}

	var insts, accesses, writes int64
	chans := map[int]int64{}
	banks := map[[2]int]int64{}
	rowACTs := map[[3]int]int64{}
	for i := 0; i < *samples; i++ {
		bubbles, line, write := gen.Next()
		insts += bubbles + 1
		accesses++
		if write {
			writes++
		}
		a := mapper.Map(line)
		chans[a.Channel]++
		banks[[2]int{a.Channel, a.Bank}]++
		rowACTs[[3]int{a.Channel, a.Bank, a.Row}]++
	}
	var hot64, hot512 int
	var maxRow int64
	for _, v := range rowACTs {
		if v >= 64 {
			hot64++
		}
		if v >= 512 {
			hot512++
		}
		if v > maxRow {
			maxRow = v
		}
	}
	fmt.Printf("workload        %s (class %s)\n", spec.Name, spec.Class)
	fmt.Printf("accesses        %d over %d instructions (MPKI %.1f)\n",
		accesses, insts, float64(accesses)/float64(insts)*1000)
	fmt.Printf("write fraction  %.3f\n", float64(writes)/float64(accesses))
	fmt.Printf("channels used   %d of %d\n", len(chans), *channels)
	fmt.Printf("banks touched   %d\n", len(banks))
	fmt.Printf("distinct rows   %d\n", len(rowACTs))
	fmt.Printf("rows >=64 acc   %d\n", hot64)
	fmt.Printf("rows >=512 acc  %d\n", hot512)
	fmt.Printf("max row count   %d\n", maxRow)
}
