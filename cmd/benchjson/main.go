// benchjson converts `go test -bench` output into a JSON benchmark
// record on stdout, stamped with the host's parallelism so a
// measurement can never be read without the context that produced it
// (a 1-core container and a 32-core sweep box tell opposite stories
// about the channel-tick worker pool).
//
// With no arguments it reads one bench run from stdin; with file
// arguments it merges several runs (e.g. the parallel-ticking grid and
// the scheduler grid) into a single host-stamped report, in argument
// order.
//
// For every benchmark pair named .../serial-<k> and .../parallel-<k> it
// derives speedup_<k> = serial ns/op ÷ parallel ns/op — the headline
// number EXPERIMENTS.md's parallel-ticking section tracks. Pairs named
// .../scan-<k> and .../incr-<k> (the memory-controller scheduler grid:
// seed full-queue scan vs incremental ready-sets) likewise derive
// speedup_<k> = scan ÷ incr.
//
// Usage:
//
//	go test -bench ParallelTicking -benchtime 2x -run '^$' . | go run ./cmd/benchjson > BENCH_parallel.json
//	go run ./cmd/benchjson par.txt sched.txt > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Note       string             `json:"note,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

// benchLine matches one result line: name, iteration count, ns/op, and
// any trailing custom metrics ("123 cycles" pairs).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	note := flag.String("note", "", "free-form context recorded in the report (host class, pinning, benchtime)")
	flag.Parse()

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}
	if files := flag.Args(); len(files) > 0 {
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			rep.Benchmarks = append(rep.Benchmarks, parseBench(f)...)
			f.Close()
		}
	} else {
		rep.Benchmarks = parseBench(os.Stdin)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines in input (run `go test -bench ...` and pipe or pass its output)")
	}
	rep.Speedups = deriveSpeedups(rep.Benchmarks)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parseBench extracts benchmark result lines from one `go test -bench`
// output stream.
func parseBench(r io.Reader) []Benchmark {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			log.Fatalf("iteration count %q: %v", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			log.Fatalf("ns/op %q: %v", m[3], err)
		}
		out = append(out, Benchmark{
			Name:       m[1],
			Iterations: iters,
			NsPerOp:    ns,
			Metrics:    parseMetrics(m[4]),
		})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}

// parseMetrics reads the "value unit" pairs go test appends after ns/op
// (custom b.ReportMetric metrics like "123456 cycles").
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil
	}
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return nil
	}
	return metrics
}

// deriveSpeedups pairs baseline with optimised results that share a key
// (the -<procs> suffix go test appends is ignored) and reports
// baseline÷optimised time ratios — above 1.0 the optimisation won. Two
// pairings exist: .../serial-<k> vs .../parallel-<k> (channel-tick worker
// pool) and .../scan-<k> vs .../incr-<k> (full-queue-scan vs incremental
// ready-set scheduler).
func deriveSpeedups(benchmarks []Benchmark) map[string]float64 {
	baseline := make(map[string]float64)
	optimised := make(map[string]float64)
	for _, b := range benchmarks {
		name := b.Name
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip go test's -<procs> suffix
			}
		}
		leaf := name[strings.LastIndex(name, "/")+1:]
		switch {
		case strings.HasPrefix(leaf, "serial-"):
			baseline[strings.TrimPrefix(leaf, "serial-")] = b.NsPerOp
		case strings.HasPrefix(leaf, "parallel-"):
			optimised[strings.TrimPrefix(leaf, "parallel-")] = b.NsPerOp
		case strings.HasPrefix(leaf, "scan-"):
			baseline[strings.TrimPrefix(leaf, "scan-")] = b.NsPerOp
		case strings.HasPrefix(leaf, "incr-"):
			optimised[strings.TrimPrefix(leaf, "incr-")] = b.NsPerOp
		}
	}
	speedups := make(map[string]float64)
	for key, s := range baseline {
		if p, ok := optimised[key]; ok && p > 0 {
			speedups["speedup_"+key] = s / p
		}
	}
	if len(speedups) == 0 {
		return nil
	}
	return speedups
}
