// bhserve runs the BreakHammer experiment service: an HTTP server that
// renders any paper figure from the content-addressed results store on
// demand, computes missing figures in deduplicated background jobs, and
// streams per-point progress over Server-Sent Events (see
// internal/serve). Figures are served as exp.Table.JSON(), byte-
// identical to `bhsweep -json` for the same configuration, so the
// server and the CLI interoperate on one cache directory and one wire
// format.
//
// With -fleet the server additionally coordinates a distributed sweep
// fleet: it enumerates the listed experiments' points and leases them
// to remote `bhsweep -worker` processes over /api/fleet (see
// internal/fleet), collecting validated results into the same store the
// figures render from.
//
// Usage:
//
//	bhserve -cache-dir ~/.bhcache                 # serve on :8077
//	bhserve -cache-dir c -preset quick -jobs 4    # smoke-scale points
//	bhserve -cache-dir c -preset paper            # paper-scale service
//	bhserve -cache-dir c -fleet all               # coordinate a sweep fleet
//	bhsweep -worker http://host:8077              # join it from any box
//	curl localhost:8077/api/figures               # catalogue + coverage
//	curl localhost:8077/api/figures/fig8          # figure or 202 ticket
//	curl -N localhost:8077/api/jobs/job-1/events  # live progress (SSE)
//	curl localhost:8077/api/fleet                 # fleet status snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"breakhammer/internal/exp"
	"breakhammer/internal/fleet"
	"breakhammer/internal/results"
	"breakhammer/internal/serve"
	"breakhammer/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bhserve: ")

	var (
		addr       = flag.String("addr", ":8077", "listen address")
		cacheDir   = flag.String("cache-dir", "", "results store directory shared with bhsweep/bhsim (empty: memory-only, nothing survives a restart)")
		preset     = flag.String("preset", "default", "experiment scale preset: default, quick or paper")
		mixes      = flag.Int("mixes", 0, "workload mixes per group (0 = preset default; paper: 15)")
		channels   = flag.Int("channels", 0, "memory channels per experiment point (0 = preset default)")
		insts      = flag.Int64("insts", 0, "instructions per benign core (0 = preset default)")
		nrhs       = flag.String("nrhs", "", "comma-separated N_RH sweep (empty = preset default)")
		mechs      = flag.String("mechs", "", "comma-separated mechanisms (empty = preset default)")
		traces     = flag.String("traces", "", "comma-separated trace files; point-sweep figures replay them (one benign core per file) instead of the synthetic mixes (table3/sec5 stay synthetic)")
		sample     = flag.Bool("sample", false, "SMARTS interval sampling for every simulated point: metrics become estimates with 95% confidence bands; fleet workers inherit this through the hello handshake")
		warmup     = flag.Int64("warmup", 0, "with -sample: detailed-but-unmeasured warm-up cycles before each measured window (0 = default)")
		detail     = flag.Int64("detail", 0, "with -sample: measured detailed window length in cycles (0 = default)")
		ffWin      = flag.Int64("ff", 0, "with -sample: functional fast-forward window length in cycles (0 = default)")
		strategies = flag.String("strategies", "", "comma-separated adaptive attacker strategies for the scenario figure (default hammer,probe,burst,decoy)")
		defenses   = flag.String("defenses", "", "comma-separated composed defenses for the scenario figure, e.g. graphene+bh,prac+rfm+bh")
		jobs       = flag.Int("jobs", 0, "configuration points simulated concurrently per figure job (0 = auto)")
		figureJobs = flag.Int("figure-jobs", 2, "figure jobs computed concurrently")
		compact    = flag.Bool("compact", true, "compact the store's shards at startup (drops superseded records)")
		parallelCh = flag.Bool("parallel-channels", false, "tick each simulation's memory channels on a worker pool (identical results and cache keys; pair with -jobs 1 on dedicated multi-core hosts)")

		fleetFigs = flag.String("fleet", "", "coordinate a distributed sweep fleet for these experiments (comma-separated names or 'all'); `bhsweep -worker <url>` processes join and drain the points")
		fleetTTL  = flag.Duration("fleet-ttl", 0, "fleet lease TTL: a worker silent this long loses its point to another worker (0 = 2m)")

		rate       = flag.Float64("rate", 0, "per-client rate limit in requests/second (token bucket keyed by API token or remote address; 0 = unlimited)")
		burst      = flag.Int("burst", 10, "with -rate: per-client burst capacity (bucket size)")
		adminToken = flag.String("admin-token", "", "arms POST /api/invalidate: requests presenting this token (X-API-Token or bearer) bump the cache generation (empty = endpoint disabled)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "rendered-table cache TTL: past it the cache generation advances lazily and derived tables recompute on next use; simulation points never expire (0 = never)")
	)
	flag.Parse()

	opts, err := exp.OptionSpec{
		Preset:     *preset,
		Mixes:      *mixes,
		Channels:   *channels,
		Insts:      *insts,
		NRHs:       *nrhs,
		Mechanisms: *mechs,
		Traces:     *traces,
		Strategies: *strategies,
		Defenses:   *defenses,

		Sample: *sample,
		Warmup: *warmup,
		Detail: *detail,
		FF:     *ffWin,

		ParallelChannels: *parallelCh,
	}.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	// Validate trace files at startup — a figure job discovering a
	// missing trace hours in would be a worse failure mode — and log
	// their scale from the sidecar manifests.
	traceLines, err := trace.ReportManifests(opts.Traces)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range traceLines {
		log.Print(line)
	}

	store, err := results.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheDir == "" {
		log.Print("no -cache-dir: results live in memory only and die with the server")
	} else {
		st := store.Stats()
		log.Printf("store %s: %d record(s) loaded, %d skipped", *cacheDir, st.Loaded, st.Skipped)
		if *compact {
			// Opportunistic startup compaction: a long-running server is
			// the natural owner of the shards' housekeeping — but never
			// while other workers hold claims, since compaction rewrites
			// shards from this process's snapshot and would drop records
			// a mid-sweep fleet appends concurrently.
			live, err := store.LiveClaims(0)
			if err != nil {
				log.Fatal(err)
			}
			if live > 0 {
				log.Printf("skipping startup compaction: %d live claim(s) — another worker is mid-sweep", live)
			} else {
				res, err := store.Compact()
				if err != nil {
					log.Fatal(err)
				}
				if res.Dropped > 0 {
					log.Printf("compacted %d shard(s): dropped %d superseded line(s), kept %d record(s)",
						res.Shards, res.Dropped, res.Kept)
				}
			}
		}
	}

	runner := exp.NewRunnerWithStore(opts, store)
	runner.SetJobs(*jobs)
	runner.SetCacheTTL(*cacheTTL)
	srv := serve.New(runner, *figureJobs)
	srv.SetRateLimit(*rate, *burst)
	srv.SetAdminToken(*adminToken)
	srv.SetLogf(log.Printf)
	if *rate > 0 {
		log.Printf("rate limit: %.3g req/s per client, burst %d", *rate, *burst)
	}
	// Reattach durable job tickets left open by a previous process: each
	// resumes as a background job that simulates only the points the
	// store does not already hold.
	reattached, err := srv.ReattachTickets()
	if err != nil {
		log.Fatal(err)
	}
	if reattached > 0 {
		log.Printf("reattached %d job ticket(s) from a previous run", reattached)
	}

	if *fleetFigs != "" {
		var names []string
		if *fleetFigs == "all" {
			for _, e := range exp.Experiments() {
				names = append(names, e.Name)
			}
		} else {
			for _, f := range strings.Split(*fleetFigs, ",") {
				name := strings.TrimSpace(f)
				if _, ok := exp.ExperimentByName(name); !ok {
					log.Fatalf("unknown experiment %q in -fleet (same catalogue as bhsweep -figs)", name)
				}
				names = append(names, name)
			}
		}
		coord, err := fleet.NewCoordinator(runner, names, *fleetTTL)
		if err != nil {
			log.Fatal(err)
		}
		srv.EnableFleet(coord)
		st := coord.Status()
		log.Printf("fleet: coordinating %d point(s) for %s (%d already cached); join with `bhsweep -worker http://<this-host>%s`",
			st.Total, strings.Join(names, ","), st.Cached, *addr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Restore the default signal handler right away: shutdown waits
		// for in-flight simulation points, so a second Ctrl-C must kill
		// the process instead of being swallowed.
		stop()
		log.Print("shutting down: cancelling background jobs (Ctrl-C again to force quit)")
		// Cancel jobs before draining connections: open SSE streams wait
		// on their job's completion, so cancelling first finishes the
		// jobs, terminates the streams, and lets Shutdown return without
		// burning its whole timeout.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving %d experiments on %s (preset %s)", len(exp.Experiments()), *addr, *preset)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err) // bind/accept failure: the shutdown goroutine never ran
	}
	<-shutdownDone
	log.Print("shutdown complete")
}
