// docslint enforces the project's godoc policy with no external
// dependencies: every exported identifier in the package directories
// given as arguments must carry a doc comment (the rule revive's
// "exported" check implements). CI runs it over internal/exp,
// internal/sim and internal/results; run it locally with
//
//	go run ./cmd/docslint ./internal/exp ./internal/sim ./internal/results
//
// It prints one "file:line: identifier" per violation and exits non-zero
// if any exist. Test files are skipped. A grouped const/var/type block's
// leading comment documents the whole block.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docslint: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: docslint <package-dir> [<package-dir>...]")
	}
	violations := 0
	for _, dir := range os.Args[1:] {
		v, err := lintDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		violations += v
	}
	if violations > 0 {
		log.Fatalf("%d exported identifier(s) missing doc comments", violations)
	}
}

// lintDir parses every non-test Go file in dir and reports undocumented
// exported declarations.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	violations := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		violations += lintFile(fset, file)
	}
	return violations, nil
}

// lintFile reports each undocumented exported top-level declaration.
func lintFile(fset *token.FileSet, file *ast.File) int {
	violations := 0
	report := func(pos token.Pos, name string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), name)
		violations++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are not part of the API.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			report(d.Pos(), d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !(groupDoc && len(d.Specs) == 1) {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || groupDoc {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return violations
}

// exportedReceiver reports whether a method's receiver base type is
// exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
